package legalize

import (
	"math"
	"math/rand"
	"testing"

	"eplace/internal/geom"
	"eplace/internal/netlist"
)

func TestBuildRows(t *testing.T) {
	d := netlist.New("r", geom.Rect{Hx: 100, Hy: 40})
	BuildRows(d, 4, 1)
	if len(d.Rows) != 10 {
		t.Fatalf("rows = %d, want 10", len(d.Rows))
	}
	if d.Rows[0].Y != 0 || d.Rows[9].Y != 36 {
		t.Errorf("row range [%v, %v]", d.Rows[0].Y, d.Rows[9].Y)
	}
}

func TestRowSegmentsAroundMacro(t *testing.T) {
	d := netlist.New("s", geom.Rect{Hx: 100, Hy: 12})
	BuildRows(d, 4, 0)
	// Macro blocking x in [40, 60] across the bottom two rows.
	d.AddCell(netlist.Cell{W: 20, H: 8, X: 50, Y: 4, Kind: netlist.Macro, Fixed: true})
	segs := FreeSegments(d)
	if len(segs[0]) != 2 || len(segs[1]) != 2 {
		t.Fatalf("bottom rows have %d, %d segments, want 2 each", len(segs[0]), len(segs[1]))
	}
	if segs[0][0].Hx != 40 || segs[0][1].Lx != 60 {
		t.Errorf("segments = %+v", segs[0])
	}
	if len(segs[2]) != 1 {
		t.Errorf("top row has %d segments, want 1", len(segs[2]))
	}
}

func makeLegalizeDesign(n int, seed int64) (*netlist.Design, []int) {
	rng := rand.New(rand.NewSource(seed))
	d := netlist.New("lg", geom.Rect{Hx: 120, Hy: 60})
	BuildRows(d, 2, 1)
	var cells []int
	for i := 0; i < n; i++ {
		cells = append(cells, d.AddCell(netlist.Cell{
			W: float64(2 + rng.Intn(4)), H: 2,
			X: 5 + rng.Float64()*110, Y: 2 + rng.Float64()*56,
		}))
	}
	return d, cells
}

func TestAbacusProducesLegalLayout(t *testing.T) {
	d, cells := makeLegalizeDesign(300, 1)
	total, max, err := Cells(d, cells, Abacus)
	if err != nil {
		t.Fatalf("Cells: %v", err)
	}
	if err := CheckLegal(d, cells); err != nil {
		t.Fatalf("not legal: %v", err)
	}
	if total <= 0 || max <= 0 {
		t.Errorf("displacement totals: total=%v max=%v", total, max)
	}
}

func TestTetrisProducesLegalLayout(t *testing.T) {
	d, cells := makeLegalizeDesign(300, 2)
	_, _, err := Cells(d, cells, Tetris)
	if err != nil {
		t.Fatalf("Cells: %v", err)
	}
	if err := CheckLegal(d, cells); err != nil {
		t.Fatalf("not legal: %v", err)
	}
}

func TestAbacusBeatsTetrisOnDisplacement(t *testing.T) {
	d1, c1 := makeLegalizeDesign(400, 3)
	ta, _, err := Cells(d1, c1, Abacus)
	if err != nil {
		t.Fatal(err)
	}
	d2, c2 := makeLegalizeDesign(400, 3)
	tt, _, err := Cells(d2, c2, Tetris)
	if err != nil {
		t.Fatal(err)
	}
	if ta > tt {
		t.Errorf("Abacus displacement %v worse than Tetris %v", ta, tt)
	}
}

func TestLegalizeAroundMacros(t *testing.T) {
	d, cells := makeLegalizeDesign(200, 4)
	// Place a fixed macro in the middle; cells must avoid it.
	d.AddCell(netlist.Cell{W: 30, H: 20, X: 60, Y: 30, Kind: netlist.Macro, Fixed: true})
	_, _, err := Cells(d, cells, Abacus)
	if err != nil {
		t.Fatalf("Cells: %v", err)
	}
	if err := CheckLegal(d, cells); err != nil {
		t.Fatalf("not legal: %v", err)
	}
}

func TestLegalizeOverfullFails(t *testing.T) {
	d := netlist.New("full", geom.Rect{Hx: 10, Hy: 4})
	BuildRows(d, 2, 0)
	var cells []int
	for i := 0; i < 10; i++ { // 10 cells x 4 wide = 40 > 20 capacity
		cells = append(cells, d.AddCell(netlist.Cell{W: 4, H: 2, X: 5, Y: 2}))
	}
	if _, _, err := Cells(d, cells, Abacus); err == nil {
		t.Error("expected capacity failure")
	}
}

func TestCheckLegalDetectsViolations(t *testing.T) {
	d := netlist.New("v", geom.Rect{Hx: 20, Hy: 8})
	BuildRows(d, 2, 0)
	a := d.AddCell(netlist.Cell{W: 4, H: 2, X: 2, Y: 1})
	b := d.AddCell(netlist.Cell{W: 4, H: 2, X: 4, Y: 1}) // overlaps a
	if err := CheckLegal(d, []int{a, b}); err == nil {
		t.Error("missed overlap")
	}
	d.Cells[b].X = 8
	if err := CheckLegal(d, []int{a, b}); err != nil {
		t.Errorf("legal layout rejected: %v", err)
	}
	d.Cells[b].Y = 1.7 // off-row
	if err := CheckLegal(d, []int{a, b}); err == nil {
		t.Error("missed off-row cell")
	}
	d.Cells[b].Y = 1
	d.Cells[b].X = 19 // sticks out of region
	if err := CheckLegal(d, []int{a, b}); err == nil {
		t.Error("missed out-of-region cell")
	}
}

func TestSnapToSites(t *testing.T) {
	d := netlist.New("snap", geom.Rect{Hx: 50, Hy: 4})
	BuildRows(d, 2, 1)
	c := d.AddCell(netlist.Cell{W: 3, H: 2, X: 10.37, Y: 1.2})
	if _, _, err := Cells(d, []int{c}, Abacus); err != nil {
		t.Fatal(err)
	}
	lx := d.Cells[c].X - 1.5
	if math.Abs(lx-math.Round(lx)) > 1e-9 {
		t.Errorf("cell left edge %v not site-aligned", lx)
	}
}

// ---- mLG tests ----

// mlgDesign builds fixed std cells plus overlapping movable macros tied
// together by nets.
func mlgDesign(nMacros int, seed int64) (*netlist.Design, []int) {
	rng := rand.New(rand.NewSource(seed))
	d := netlist.New("mlg", geom.Rect{Hx: 100, Hy: 100})
	var cells []int
	for i := 0; i < 150; i++ {
		cells = append(cells, d.AddCell(netlist.Cell{
			W: 2, H: 2, X: rng.Float64() * 100, Y: rng.Float64() * 100,
			Fixed: true, // std cells are fixed during mLG
		}))
	}
	var macros []int
	for i := 0; i < nMacros; i++ {
		// Cluster macros near the center so they overlap initially.
		macros = append(macros, d.AddCell(netlist.Cell{
			W: 14 + rng.Float64()*6, H: 14 + rng.Float64()*6,
			X: 40 + rng.Float64()*20, Y: 40 + rng.Float64()*20,
			Kind: netlist.Macro,
		}))
	}
	for _, mi := range macros {
		for k := 0; k < 4; k++ {
			ni := d.AddNet("", 1)
			d.Connect(mi, ni, 0, 0)
			d.Connect(cells[rng.Intn(len(cells))], ni, 0, 0)
		}
	}
	return d, macros
}

func TestMLGRemovesMacroOverlap(t *testing.T) {
	d, macros := mlgDesign(6, 1)
	res := Macros(d, macros, MLGOptions{Seed: 2})
	if !res.Legal {
		t.Fatalf("mLG did not legalize: Om after = %v", res.OmAfter)
	}
	if res.OmBefore <= 0 {
		t.Fatal("test setup: no initial overlap")
	}
	if err := CheckMacrosLegal(d, macros); err != nil {
		t.Errorf("CheckMacrosLegal: %v", err)
	}
	// Macros were fixed by mLG.
	for _, mi := range macros {
		if !d.Cells[mi].Fixed {
			t.Error("macro not fixed after mLG")
		}
	}
}

func TestMLGOnlyLocalShifts(t *testing.T) {
	// Macros already legal: mLG must barely move them.
	d := netlist.New("legal", geom.Rect{Hx: 100, Hy: 100})
	var macros []int
	for i := 0; i < 3; i++ {
		macros = append(macros, d.AddCell(netlist.Cell{
			W: 10, H: 10, X: 15 + 30*float64(i), Y: 50, Kind: netlist.Macro,
		}))
	}
	before := make([]geom.Point, len(macros))
	for k, mi := range macros {
		before[k] = geom.Point{X: d.Cells[mi].X, Y: d.Cells[mi].Y}
	}
	res := Macros(d, macros, MLGOptions{Seed: 3})
	if !res.Legal {
		t.Fatal("legal input became illegal")
	}
	for k, mi := range macros {
		moved := math.Hypot(d.Cells[mi].X-before[k].X, d.Cells[mi].Y-before[k].Y)
		if moved > 20 {
			t.Errorf("macro %d moved %v, expected only local shifts", k, moved)
		}
	}
}

func TestMLGWirelengthOverheadBounded(t *testing.T) {
	d, macros := mlgDesign(5, 4)
	wBefore := d.HPWL()
	res := Macros(d, macros, MLGOptions{Seed: 5})
	if !res.Legal {
		t.Fatal("not legalized")
	}
	if res.WAfter > 1.6*wBefore {
		t.Errorf("mLG wirelength %v vs %v: overhead too large", res.WAfter, wBefore)
	}
	if math.Abs(res.WAfter-d.HPWL()) > 1e-6*d.HPWL() {
		t.Errorf("reported WAfter %v != design HPWL %v", res.WAfter, d.HPWL())
	}
}

func TestMLGEmptyMacros(t *testing.T) {
	d := netlist.New("none", geom.Rect{Hx: 10, Hy: 10})
	res := Macros(d, nil, MLGOptions{})
	if !res.Legal {
		t.Error("empty macro set should be trivially legal")
	}
}

func TestMLGManyMacros(t *testing.T) {
	d, macros := mlgDesign(15, 6)
	res := Macros(d, macros, MLGOptions{Seed: 7, MovesPerMacro: 300})
	if !res.Legal {
		t.Fatalf("15 macros not legalized: Om=%v", res.OmAfter)
	}
	if err := CheckMacrosLegal(d, macros); err != nil {
		t.Error(err)
	}
}

func TestShoveApartResolvesOverlap(t *testing.T) {
	d := netlist.New("shove", geom.Rect{Hx: 100, Hy: 100})
	a := d.AddCell(netlist.Cell{W: 20, H: 20, X: 50, Y: 50, Kind: netlist.Macro})
	b := d.AddCell(netlist.Cell{W: 20, H: 20, X: 55, Y: 52, Kind: netlist.Macro})
	shoveApart(d, []int{a, b}, 50)
	if ov := d.Cells[a].Rect().Overlap(d.Cells[b].Rect()); ov > 1e-9 {
		t.Errorf("overlap remains: %v", ov)
	}
	if err := CheckMacrosLegal(d, []int{a, b}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAbacus1000(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		d, cells := makeLegalizeDesign(1000, 9)
		b.StartTimer()
		if _, _, err := Cells(d, cells, Abacus); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMLG10Macros(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		d, macros := mlgDesign(10, 11)
		b.StartTimer()
		Macros(d, macros, MLGOptions{Seed: 2})
	}
}

func TestRotateMacroQuarterTurns(t *testing.T) {
	d := netlist.New("rot", geom.Rect{Hx: 100, Hy: 100})
	mi := d.AddCell(netlist.Cell{W: 20, H: 10, X: 50, Y: 50, Kind: netlist.Macro})
	pad := d.AddCell(netlist.Cell{W: 1, H: 1, X: 90, Y: 50, Fixed: true, Kind: netlist.Pad})
	ni := d.AddNet("n", 1)
	d.Connect(mi, ni, 8, 3)
	d.Connect(pad, ni, 0, 0)
	w0, h0 := d.Cells[mi].W, d.Cells[mi].H
	ox0, oy0 := d.Pins[0].Ox, d.Pins[0].Oy
	hpwl0 := d.HPWL()

	rotateMacro(d, mi)
	if d.Cells[mi].W != h0 || d.Cells[mi].H != w0 {
		t.Errorf("rotation did not swap dims: %vx%v", d.Cells[mi].W, d.Cells[mi].H)
	}
	if d.Pins[0].Ox != -oy0 || d.Pins[0].Oy != ox0 {
		t.Errorf("pin offset after rotation = (%v, %v)", d.Pins[0].Ox, d.Pins[0].Oy)
	}
	// Four quarter turns restore everything.
	rotateMacro(d, mi)
	rotateMacro(d, mi)
	rotateMacro(d, mi)
	if d.Cells[mi].W != w0 || d.Cells[mi].H != h0 ||
		d.Pins[0].Ox != ox0 || d.Pins[0].Oy != oy0 {
		t.Error("four rotations did not restore the macro")
	}
	if math.Abs(d.HPWL()-hpwl0) > 1e-9 {
		t.Errorf("HPWL drifted across full rotation: %v vs %v", d.HPWL(), hpwl0)
	}
}

func TestMLGWithRotationStillLegal(t *testing.T) {
	d, macros := mlgDesign(8, 21)
	res := Macros(d, macros, MLGOptions{Seed: 22, AllowOrient: true})
	if !res.Legal {
		t.Fatalf("rotation-enabled mLG not legal: Om=%v", res.OmAfter)
	}
	if err := CheckMacrosLegal(d, macros); err != nil {
		t.Error(err)
	}
}

func TestMLGRotationHelpsTallMacrosInWideRows(t *testing.T) {
	// Tall macros connected to pads on a horizontal line: rotating them
	// should not hurt and usually shortens wirelength vs. the NR run.
	build := func() (*netlist.Design, []int) {
		d := netlist.New("tall", geom.Rect{Hx: 120, Hy: 40})
		var macros []int
		for i := 0; i < 4; i++ {
			macros = append(macros, d.AddCell(netlist.Cell{
				W: 8, H: 30, X: 55 + 3*float64(i), Y: 20, Kind: netlist.Macro,
			}))
		}
		for i, mi := range macros {
			pad := d.AddCell(netlist.Cell{W: 1, H: 1, X: float64(10 + 30*i), Y: 2, Fixed: true, Kind: netlist.Pad})
			ni := d.AddNet("", 1)
			d.Connect(mi, ni, 0, 0)
			d.Connect(pad, ni, 0, 0)
		}
		return d, macros
	}
	d1, m1 := build()
	nr := Macros(d1, m1, MLGOptions{Seed: 5})
	d2, m2 := build()
	rot := Macros(d2, m2, MLGOptions{Seed: 5, AllowOrient: true})
	if !nr.Legal || !rot.Legal {
		t.Fatalf("legality: nr=%v rot=%v", nr.Legal, rot.Legal)
	}
	if rot.WAfter > 1.3*nr.WAfter {
		t.Errorf("rotation made wirelength much worse: %v vs %v", rot.WAfter, nr.WAfter)
	}
}

// Regression: fractional segment boundaries (pads at half-site edges)
// must not let the site-snapping pass collide clusters.
func TestSnapWithFractionalSegmentsRegression(t *testing.T) {
	d := netlist.New("frac", geom.Rect{Hx: 30, Hy: 4})
	BuildRows(d, 2, 1)
	// Obstacles with fractional edges split row 0 into awkward segments.
	d.AddCell(netlist.Cell{W: 1.3, H: 2, X: 8.15, Y: 1, Fixed: true})
	d.AddCell(netlist.Cell{W: 0.7, H: 2, X: 15.85, Y: 1, Fixed: true})
	var cells []int
	for i := 0; i < 8; i++ {
		cells = append(cells, d.AddCell(netlist.Cell{
			W: 2, H: 2, X: 3 + 3*float64(i%5), Y: 1 + 2*float64(i/5),
		}))
	}
	if _, _, err := Cells(d, cells, Abacus); err != nil {
		t.Fatal(err)
	}
	if err := CheckLegal(d, cells); err != nil {
		t.Fatalf("fractional segments broke legality: %v", err)
	}
}
