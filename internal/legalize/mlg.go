package legalize

import (
	"math"
	"math/rand"
	"time"

	"eplace/internal/geom"
	"eplace/internal/netlist"
	"eplace/internal/parallel"
	"eplace/internal/telemetry"
)

// MLGOptions tunes the annealing macro legalizer.
type MLGOptions struct {
	// Kappa is the per-outer-iteration scale factor (default 1.5).
	Kappa float64
	// MaxOuter bounds the mLG iterations (default 30).
	MaxOuter int
	// MovesPerMacro sets the inner SA loop length as moves per macro
	// (default 400).
	MovesPerMacro int
	// GridM is the resolution of the standard-cell coverage grid used
	// for the D(v) term (default 64).
	GridM int
	// Seed drives the annealer (default 1).
	Seed int64
	// AllowOrient enables 90-degree macro rotation moves, the extension
	// the paper mentions but disables to follow contest protocols
	// (Sec. III). Pin offsets rotate with the macro.
	AllowOrient bool
	// Workers parallelizes the state build (coverage splat, net HPWL
	// cache, per-macro terms): 0 uses all cores. The annealing loop
	// itself consumes one sequential RNG stream and stays serial.
	// Results are bitwise-identical at every setting: float reductions
	// run over a fixed shard structure independent of the worker count.
	Workers int
	// Telemetry, when non-nil, receives one Sample per outer iteration
	// (stage "mLG": HPWL=W, Energy=D, Overlap=Om, the Fig. 5 metrics)
	// plus move/accept counters.
	Telemetry *telemetry.Recorder
}

func (o *MLGOptions) defaults() {
	if o.Kappa <= 0 {
		o.Kappa = 1.5
	}
	if o.MaxOuter <= 0 {
		o.MaxOuter = 30
	}
	if o.MovesPerMacro <= 0 {
		o.MovesPerMacro = 400
	}
	if o.GridM <= 0 {
		o.GridM = 64
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// MLGResult reports a macro legalization run.
type MLGResult struct {
	// W, D, Om before and after (the Fig. 5 metrics).
	WBefore, DBefore, OmBefore float64
	WAfter, DAfter, OmAfter    float64
	OuterIterations            int
	Moves, Accepted            int
	Legal                      bool
}

// mlgState evaluates f_mLG = W + muD*D + muO*Om incrementally.
type mlgState struct {
	d      *netlist.Design
	macros []int
	// covGrid[j*m+i] = std-cell area in bin (i, j), fixed during mLG.
	covGrid    []float64
	m          int
	binW, binH float64

	// Cached per-macro contributions.
	dCov []float64 // D contribution of each macro
	// netHPWL caches every net's HPWL; macroNets lists nets per macro.
	netHPWL   []float64
	macroNets [][]int

	W, D, Om float64
}

// mlgShards is the fixed shard count for the state build's float
// reductions (coverage splat, W, D, Om). Determinism contract: the
// shard structure — and therefore the floating-point grouping — is a
// constant, never a function of the worker count, so every worker
// count sums in exactly the same order.
const mlgShards = 64

func newMLGState(d *netlist.Design, macros []int, gridM, workers int) *mlgState {
	nw := parallel.Count(workers)
	s := &mlgState{
		d: d, macros: macros, m: gridM,
		covGrid: make([]float64, gridM*gridM),
		binW:    d.Region.W() / float64(gridM),
		binH:    d.Region.H() / float64(gridM),
		dCov:    make([]float64, len(macros)),
	}
	// Rasterize standard cells (movable or fixed, non-macro, non-filler)
	// into one sub-grid per fixed cell shard, then reduce each bin over
	// shards in shard order. Each shard costs a gridM² sub-grid, so the
	// shard count is design-derived — small designs use one shard (the
	// plain serial splat, no copy) — but never worker-derived, keeping
	// the float grouping identical at every worker count.
	nb := gridM * gridM
	splatShards := len(d.Cells) / 4096
	if splatShards < 1 {
		splatShards = 1
	}
	if splatShards > mlgShards {
		splatShards = mlgShards
	}
	if splatShards == 1 {
		for i := range d.Cells {
			c := &d.Cells[i]
			if c.Kind == netlist.StdCell {
				splatInto(s.covGrid, s, c.Rect())
			}
		}
	} else {
		shardGrids := make([]float64, splatShards*nb)
		parallel.For(nw, splatShards, func(_, lo, hi int) {
			for sh := lo; sh < hi; sh++ {
				grid := shardGrids[sh*nb : (sh+1)*nb]
				c0 := sh * len(d.Cells) / splatShards
				c1 := (sh + 1) * len(d.Cells) / splatShards
				for i := c0; i < c1; i++ {
					c := &d.Cells[i]
					if c.Kind == netlist.StdCell {
						splatInto(grid, s, c.Rect())
					}
				}
			}
		})
		parallel.For(nw, nb, func(_, lo, hi int) {
			for b := lo; b < hi; b++ {
				acc := 0.0
				for sh := 0; sh < splatShards; sh++ {
					acc += shardGrids[sh*nb+b]
				}
				s.covGrid[b] = acc
			}
		})
	}
	// Cache net HPWL (disjoint writes) and reduce W over fixed net shards.
	s.netHPWL = make([]float64, len(d.Nets))
	var wPart [mlgShards]float64
	parallel.For(nw, mlgShards, func(_, lo, hi int) {
		for sh := lo; sh < hi; sh++ {
			n0 := sh * len(d.Nets) / mlgShards
			n1 := (sh + 1) * len(d.Nets) / mlgShards
			acc := 0.0
			for ni := n0; ni < n1; ni++ {
				s.netHPWL[ni] = d.NetHPWL(ni)
				acc += s.netHPWL[ni]
			}
			wPart[sh] = acc
		}
	})
	for sh := 0; sh < mlgShards; sh++ {
		s.W += wPart[sh]
	}
	// Per-macro terms: disjoint writes per macro, serial in-order sums.
	s.macroNets = make([][]int, len(macros))
	parallel.For(nw, len(macros), func(_, lo, hi int) {
		for k := lo; k < hi; k++ {
			mi := macros[k]
			// Determinism contract: seen is membership-only; macroNets[k]
			// is built in the macro's deterministic pin order.
			seen := map[int]bool{}
			for _, pi := range d.Cells[mi].Pins {
				ni := d.Pins[pi].Net
				if !seen[ni] {
					seen[ni] = true
					s.macroNets[k] = append(s.macroNets[k], ni)
				}
			}
			s.dCov[k] = s.coverage(d.Cells[mi].Rect())
		}
	})
	for k := range macros {
		s.D += s.dCov[k]
	}
	s.Om = s.macroOverlapWorkers(nw)
	return s
}

// splatInto rasterizes rectangle r into the given grid (one shard's
// sub-grid during the parallel state build).
func splatInto(grid []float64, s *mlgState, r geom.Rect) {
	r = r.Intersect(s.d.Region)
	if r.Empty() {
		return
	}
	i0 := int((r.Lx - s.d.Region.Lx) / s.binW)
	i1 := int(math.Ceil((r.Hx - s.d.Region.Lx) / s.binW))
	j0 := int((r.Ly - s.d.Region.Ly) / s.binH)
	j1 := int(math.Ceil((r.Hy - s.d.Region.Ly) / s.binH))
	i0, j0 = clampIdx(i0, s.m), clampIdx(j0, s.m)
	i1, j1 = clampHi(i1, s.m), clampHi(j1, s.m)
	for j := j0; j < j1; j++ {
		by := s.d.Region.Ly + float64(j)*s.binH
		oy := math.Min(r.Hy, by+s.binH) - math.Max(r.Ly, by)
		if oy <= 0 {
			continue
		}
		for i := i0; i < i1; i++ {
			bx := s.d.Region.Lx + float64(i)*s.binW
			ox := math.Min(r.Hx, bx+s.binW) - math.Max(r.Lx, bx)
			if ox > 0 {
				grid[j*s.m+i] += ox * oy
			}
		}
	}
}

// coverage returns the std-cell area under rectangle r: the per-macro
// D(v) contribution, computed from the fixed coverage grid.
func (s *mlgState) coverage(r geom.Rect) float64 {
	r = r.Intersect(s.d.Region)
	if r.Empty() {
		return 0
	}
	binArea := s.binW * s.binH
	i0 := int((r.Lx - s.d.Region.Lx) / s.binW)
	i1 := int(math.Ceil((r.Hx - s.d.Region.Lx) / s.binW))
	j0 := int((r.Ly - s.d.Region.Ly) / s.binH)
	j1 := int(math.Ceil((r.Hy - s.d.Region.Ly) / s.binH))
	i0, j0 = clampIdx(i0, s.m), clampIdx(j0, s.m)
	i1, j1 = clampHi(i1, s.m), clampHi(j1, s.m)
	total := 0.0
	for j := j0; j < j1; j++ {
		by := s.d.Region.Ly + float64(j)*s.binH
		oy := math.Min(r.Hy, by+s.binH) - math.Max(r.Ly, by)
		if oy <= 0 {
			continue
		}
		for i := i0; i < i1; i++ {
			bx := s.d.Region.Lx + float64(i)*s.binW
			ox := math.Min(r.Hx, bx+s.binW) - math.Max(r.Lx, bx)
			if ox > 0 {
				total += s.covGrid[j*s.m+i] * (ox * oy / binArea)
			}
		}
	}
	return total
}

func (s *mlgState) totalMacroOverlap() float64 {
	return s.macroOverlapWorkers(1)
}

// macroOverlapWorkers sums pairwise macro overlap with one partial per
// leading macro (disjoint writes), reduced in macro order — the same
// float grouping at every worker count.
func (s *mlgState) macroOverlapWorkers(workers int) float64 {
	if len(s.macros) == 0 {
		return 0
	}
	parts := make([]float64, len(s.macros))
	parallel.For(workers, len(s.macros), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			ri := s.d.Cells[s.macros[i]].Rect()
			acc := 0.0
			for j := i + 1; j < len(s.macros); j++ {
				acc += ri.Overlap(s.d.Cells[s.macros[j]].Rect())
			}
			parts[i] = acc
		}
	})
	total := 0.0
	for i := range parts {
		total += parts[i]
	}
	return total
}

// overlapWith returns the overlap of rectangle r with all macros except k.
func (s *mlgState) overlapWith(r geom.Rect, k int) float64 {
	total := 0.0
	for j, mj := range s.macros {
		if j == k {
			continue
		}
		total += r.Overlap(s.d.Cells[mj].Rect())
	}
	return total
}

// wirelengthOf returns the summed HPWL of the macro's nets.
func (s *mlgState) wirelengthOf(k int) float64 {
	total := 0.0
	for _, ni := range s.macroNets[k] {
		total += s.d.NetHPWL(ni)
	}
	return total
}

// Macros runs the two-level annealing macro legalizer on the movable
// macros of d (standard cells are treated as fixed for the D term) and
// then fixes them in place. Positions must come from a converged mGP:
// only local shifts are explored (Sec. VI-A).
func Macros(d *netlist.Design, macros []int, opt MLGOptions) MLGResult {
	opt.defaults()
	res := MLGResult{}
	if len(macros) == 0 {
		res.Legal = true
		return res
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	t0 := time.Now()
	s := newMLGState(d, macros, opt.GridM, opt.Workers)
	opt.Telemetry.AddSpanTime("mLG", "state", time.Since(t0))
	res.WBefore, res.DBefore, res.OmBefore = s.W, s.D, s.Om

	muD := 1.0
	if s.D > 0 {
		muD = s.W / s.D
	}
	muO := 1.0
	if s.Om > 0 {
		muO = s.W / s.Om
	} else {
		muO = s.W
	}

	tAnneal := time.Now()
	kmax := opt.MovesPerMacro * len(macros)
	baseRadius := d.Region.W() / math.Sqrt(float64(len(macros))) * 0.05
	maxRadius := math.Min(d.Region.W(), d.Region.H()) / 4

	for outer := 0; outer < opt.MaxOuter && s.Om > 1e-9; outer++ {
		res.OuterIterations = outer + 1
		scale := math.Pow(opt.Kappa, float64(outer))
		radius := math.Min(baseRadius*scale, maxRadius)
		// f is refreshed per mLG iteration; since the acceptance test
		// below is on the relative increase df/f, the kappa^j growth of
		// the paper's absolute Delta-f_max thresholds is already carried
		// by the mu_O term inside f.
		f := s.W + muD*s.D + muO*s.Om
		if f <= 0 {
			f = 1
		}
		const dfMax0, dfMaxEnd = 0.03, 0.0001
		for k := 0; k < kmax; k++ {
			frac := float64(k) / float64(kmax)
			dfMax := dfMax0 + (dfMaxEnd-dfMax0)*frac
			temp := dfMax / math.Ln2

			mk := rng.Intn(len(macros))
			mi := macros[mk]
			c := &d.Cells[mi]
			oldX, oldY := c.X, c.Y

			// Move repertoire: local shift, or (when the orientation
			// extension is enabled) a 90-degree rotation. The paper's
			// default follows the contest protocols (no rotation,
			// Sec. III) but notes the flexibility to add it.
			rotated := opt.AllowOrient && c.W != c.H && rng.Float64() < 0.2
			oldW := s.wirelengthOf(mk)
			oldD := s.dCov[mk]
			oldOv := s.overlapWith(c.Rect(), mk)
			if rotated {
				rotateMacro(d, mi)
			} else {
				// Random motion vector within the search radius, clamped.
				nx := oldX + (rng.Float64()*2-1)*radius
				ny := oldY + (rng.Float64()*2-1)*radius
				p := geom.ClampPoint(geom.Point{X: nx, Y: ny}, c.W, c.H, d.Region)
				c.X, c.Y = p.X, p.Y
			}
			newW := s.wirelengthOf(mk)
			newRect := c.Rect()
			newD := s.coverage(newRect)
			newOv := s.overlapWith(newRect, mk)

			df := (newW - oldW) + muD*(newD-oldD) + muO*(newOv-oldOv)
			res.Moves++
			accept := df <= 0
			if !accept {
				rel := df / f
				accept = rng.Float64() < math.Exp(-rel/temp)
			}
			if accept {
				res.Accepted++
				s.W += newW - oldW
				s.D += newD - oldD
				s.dCov[mk] = newD
				s.Om += newOv - oldOv
				for _, ni := range s.macroNets[mk] {
					s.netHPWL[ni] = d.NetHPWL(ni)
				}
			} else if rotated {
				// Three more quarter turns restore the original
				// orientation and pin offsets exactly.
				rotateMacro(d, mi)
				rotateMacro(d, mi)
				rotateMacro(d, mi)
				c.X, c.Y = oldX, oldY
			} else {
				c.X, c.Y = oldX, oldY
			}
		}
		muO *= opt.Kappa
		opt.Telemetry.Sample(telemetry.Sample{
			Stage: "mLG", Iteration: outer,
			HPWL: s.W, Energy: s.D, Overlap: s.Om,
		})
	}
	opt.Telemetry.Count("mLG/moves", int64(res.Moves))
	opt.Telemetry.Count("mLG/accepted", int64(res.Accepted))
	opt.Telemetry.AddSpanTime("mLG", "anneal", time.Since(tAnneal))

	// Deterministic cleanup: resolve any residual overlap by shoving
	// pairs apart along the cheaper axis.
	shoveApart(d, macros, 200)
	s.Om = s.totalMacroOverlap()

	res.WAfter = d.HPWL()
	res.DAfter = 0
	for k := range macros {
		s.dCov[k] = s.coverage(d.Cells[macros[k]].Rect())
		res.DAfter += s.dCov[k]
	}
	res.OmAfter = s.totalMacroOverlap()
	res.Legal = res.OmAfter <= 1e-6
	for _, mi := range macros {
		d.Cells[mi].Fixed = true
	}
	return res
}

// rotateMacro turns macro mi by 90 degrees counterclockwise about its
// center: width and height swap and every pin offset (ox, oy) maps to
// (-oy, ox). The footprint is re-clamped into the region.
func rotateMacro(d *netlist.Design, mi int) {
	c := &d.Cells[mi]
	c.W, c.H = c.H, c.W
	for _, pi := range c.Pins {
		p := &d.Pins[pi]
		p.Ox, p.Oy = -p.Oy, p.Ox
	}
	pt := geom.ClampPoint(geom.Point{X: c.X, Y: c.Y}, c.W, c.H, d.Region)
	c.X, c.Y = pt.X, pt.Y
}

// shoveApart removes residual pairwise macro overlaps by translating
// the lighter macro of each overlapping pair along the axis needing the
// smaller shift, clamped to the region. Iterates up to maxPasses.
func shoveApart(d *netlist.Design, macros []int, maxPasses int) {
	for pass := 0; pass < maxPasses; pass++ {
		moved := false
		for i := 0; i < len(macros); i++ {
			ci := &d.Cells[macros[i]]
			ri := ci.Rect()
			for j := i + 1; j < len(macros); j++ {
				cj := &d.Cells[macros[j]]
				rj := cj.Rect()
				if !ri.Intersects(rj) {
					continue
				}
				// Overlap extents.
				ox := math.Min(ri.Hx, rj.Hx) - math.Max(ri.Lx, rj.Lx)
				oy := math.Min(ri.Hy, rj.Hy) - math.Max(ri.Ly, rj.Ly)
				// Move the smaller macro.
				mv := cj
				if ci.Area() < cj.Area() {
					mv = ci
				}
				ot := ci
				if mv == ci {
					ot = cj
				}
				if ox <= oy {
					if mv.X < ot.X {
						mv.X -= ox
					} else {
						mv.X += ox
					}
				} else {
					if mv.Y < ot.Y {
						mv.Y -= oy
					} else {
						mv.Y += oy
					}
				}
				p := geom.ClampPoint(geom.Point{X: mv.X, Y: mv.Y}, mv.W, mv.H, d.Region)
				mv.X, mv.Y = p.X, p.Y
				ri = ci.Rect()
				moved = true
			}
		}
		if !moved {
			return
		}
	}
}

func clampIdx(i, m int) int {
	if i < 0 {
		return 0
	}
	if i >= m {
		return m - 1
	}
	return i
}

func clampHi(i, m int) int {
	if i < 0 {
		return 0
	}
	if i > m {
		return m
	}
	return i
}
