package legalize

import (
	"fmt"
	"math"
	"sort"

	"eplace/internal/netlist"
	"eplace/internal/parallel"
)

// Method selects the standard-cell legalization algorithm.
type Method uint8

const (
	// Abacus places each cell by cluster dynamic programming per row,
	// minimizing displacement (the default; better quality).
	Abacus Method = iota
	// Tetris greedily packs cells left-to-right (faster, rougher).
	Tetris
)

// cluster is the Abacus cluster: a maximal run of abutting cells.
// Optimal position x = q/e; merging is associative.
type cluster struct {
	x     float64 // optimal left edge
	e     float64 // total weight
	q     float64 // sum of w_i*(x_i' - offset_i)
	w     float64 // total width
	cells []int
}

// seg is one free row interval with its placed clusters.
type seg struct {
	lx, hx   float64
	clusters []cluster
	used     float64
}

// Band partition constants: rows are grouped into contiguous bands of
// at least bandRows rows and roughly bandCellsTarget cells each, capped
// at maxBands. Small designs get one band — exactly the unbanded
// algorithm — while 50K+-cell designs split into enough bands to keep a
// worker pool busy. The partition is a pure function of the design
// (never the worker count), so banded legalization is
// bitwise-identical at every worker count.
const (
	bandRows        = 8
	bandCellsTarget = 2000
	maxBands        = 64
)

// Cells legalizes the given standard cells onto the design's rows,
// minimizing displacement from their global-placement positions.
// Returns the total and maximum displacement, or an error if capacity
// is insufficient. Equivalent to CellsWorkers with workers=1.
func Cells(d *netlist.Design, cells []int, method Method) (total, max float64, err error) {
	return CellsWorkers(d, cells, method, 1)
}

// CellsWorkers is Cells sharded over row bands: each band legalizes its
// own cells against its own rows in parallel (disjoint state), cells
// that do not fit inside their band spill into a serial second pass
// over all rows, and displacement sums reduce in fixed band order.
// Results are bitwise-identical at every worker count (0 = all cores).
func CellsWorkers(d *netlist.Design, cells []int, method Method, workers int) (total, max float64, err error) {
	if len(d.Rows) == 0 {
		return 0, 0, fmt.Errorf("legalize: design has no rows")
	}
	nw := parallel.Count(workers)
	rawSegs := FreeSegments(d)
	rows := make([][]seg, len(d.Rows))
	for ri := range rawSegs {
		for _, s := range rawSegs[ri] {
			rows[ri] = append(rows[ri], seg{lx: s.Lx, hx: s.Hx})
		}
	}

	// Process cells in x order (Abacus) so per-row packing is coherent.
	order := append([]int(nil), cells...)
	sort.Slice(order, func(a, b int) bool {
		ca, cb := &d.Cells[order[a]], &d.Cells[order[b]]
		if ca.X != cb.X {
			return ca.X < cb.X
		}
		return order[a] < order[b]
	})

	// Row index sorted by Y for nearest-row search.
	rowY := make([]float64, len(d.Rows))
	for i, r := range d.Rows {
		rowY[i] = r.Y
	}

	// Contiguous row bands (design-derived boundaries; see constants).
	nb := len(d.Rows) / bandRows
	if byCells := len(cells) / bandCellsTarget; byCells < nb {
		nb = byCells
	}
	if nb < 1 {
		nb = 1
	}
	if nb > maxBands {
		nb = maxBands
	}
	bandLo := make([]int, nb+1)
	for b := 0; b <= nb; b++ {
		bandLo[b] = b * len(d.Rows) / nb
	}
	bandOfRow := make([]int, len(d.Rows))
	for b := 0; b < nb; b++ {
		for ri := bandLo[b]; ri < bandLo[b+1]; ri++ {
			bandOfRow[ri] = b
		}
	}
	// Assign each cell (x order preserved) to the band of its nearest row.
	bandCells := make([][]int, nb)
	for _, ci := range order {
		c := &d.Cells[ci]
		b := bandOfRow[nearestRow(rowY, c.Y-c.H/2)]
		bandCells[b] = append(bandCells[b], ci)
	}

	// Parallel band pass: bands own disjoint row ranges and disjoint
	// cells, so they legalize independently. Cells with no in-band room
	// become per-band spill lists instead of errors.
	spills := make([][]int, nb)
	bandTotal := make([]float64, nb)
	bandMax := make([]float64, nb)
	parallel.For(nw, nb, func(_, lo, hi int) {
		for b := lo; b < hi; b++ {
			for _, ci := range bandCells[b] {
				disp, ok := placeOne(d, rows, rowY, method, ci, bandLo[b], bandLo[b+1])
				if !ok {
					spills[b] = append(spills[b], ci)
					continue
				}
				bandTotal[b] += disp
				if disp > bandMax[b] {
					bandMax[b] = disp
				}
			}
		}
	})
	// Fixed-order reduction over bands.
	for b := 0; b < nb; b++ {
		total += bandTotal[b]
		if bandMax[b] > max {
			max = bandMax[b]
		}
	}

	// Serial spill pass over all rows, in (x, index) order. Only here
	// can legalization fail: the whole design is out of capacity.
	var spill []int
	for b := range spills {
		spill = append(spill, spills[b]...)
	}
	sort.Slice(spill, func(a, b int) bool {
		ca, cb := &d.Cells[spill[a]], &d.Cells[spill[b]]
		if ca.X != cb.X {
			return ca.X < cb.X
		}
		return spill[a] < spill[b]
	})
	for _, ci := range spill {
		disp, ok := placeOne(d, rows, rowY, method, ci, 0, len(d.Rows))
		if !ok {
			c := &d.Cells[ci]
			return total, max, fmt.Errorf("legalize: no room for cell %d (%s), w=%v", ci, c.Name, c.W)
		}
		total += disp
		if disp > max {
			max = disp
		}
	}

	// Final per-segment fixups: snap cluster positions to sites and
	// write cells back (Abacus moves earlier cells when clusters
	// collapse). Rows are disjoint, so the fixup parallelizes cleanly.
	parallel.For(nw, len(rows), func(_, lo, hi int) {
		for ri := lo; ri < hi; ri++ {
			fixupRow(d, &d.Rows[ri], rows[ri])
		}
	})
	return total, max, nil
}

// placeOne legalizes one cell into the rows of [rowLo, rowHi), trying
// rows outward from the nearest until the row-distance alone exceeds
// the best cost found. Returns ok=false when no segment in range fits.
func placeOne(d *netlist.Design, rows [][]seg, rowY []float64, method Method, ci, rowLo, rowHi int) (disp float64, ok bool) {
	c := &d.Cells[ci]
	desiredX := c.X - c.W/2
	desiredY := c.Y - c.H/2
	bestCost := math.Inf(1)
	bestRow, bestSeg := -1, -1
	var bestX float64
	nearest := nearestRow(rowY, desiredY)
	if nearest < rowLo {
		nearest = rowLo
	}
	if nearest >= rowHi {
		nearest = rowHi - 1
	}
	for radius := 0; ; radius++ {
		any := false
		for side := 0; side < 2; side++ {
			ri := nearest - radius
			if side == 1 {
				ri = nearest + radius
			}
			if ri < rowLo || ri >= rowHi || (radius == 0 && side == 1) {
				continue
			}
			rowDist := math.Abs(d.Rows[ri].Y - desiredY)
			if rowDist >= bestCost {
				continue
			}
			any = true
			for si := range rows[ri] {
				s := &rows[ri][si]
				if s.hx-s.lx-s.used < c.W {
					continue
				}
				var x float64
				if method == Tetris {
					x = tetrisTrial(s, desiredX, c.W)
				} else {
					x = abacusTrial(s, desiredX, c.W)
				}
				if math.IsNaN(x) {
					continue
				}
				cost := math.Abs(x-desiredX) + rowDist
				if cost < bestCost {
					bestCost, bestRow, bestSeg, bestX = cost, ri, si, x
				}
			}
		}
		if !any && radius > 0 {
			break
		}
		if radius > rowHi-rowLo {
			break
		}
	}
	if bestRow < 0 {
		return 0, false
	}
	row := &d.Rows[bestRow]
	s := &rows[bestRow][bestSeg]
	var placedX float64
	if method == Tetris {
		placedX = tetrisCommit(s, ci, bestX, c.W)
	} else {
		placedX = abacusCommit(s, ci, desiredX, c.W)
	}
	c.X = placedX + c.W/2
	c.Y = row.Y + c.H/2
	disp = math.Abs(c.X-(desiredX+c.W/2)) + math.Abs(c.Y-(desiredY+c.H/2))
	s.used += c.W
	return disp, true
}

// fixupRow snaps one row's cluster positions to sites and writes cells
// back. Snapping is all-or-nothing per segment: if any cluster cannot
// be site-aligned without colliding (fractional segment boundaries can
// force this), the whole segment keeps the exact cluster positions,
// which are legal by construction.
func fixupRow(d *netlist.Design, row *netlist.Row, segs []seg) {
	for si := range segs {
		s := &segs[si]
		sort.Slice(s.clusters, func(a, b int) bool { return s.clusters[a].x < s.clusters[b].x })
		xs, ok := snappedSegment(row, s)
		if !ok {
			xs = unsnappedSegment(s)
		}
		for k := range s.clusters {
			x := xs[k]
			for _, ci := range s.clusters[k].cells {
				c := &d.Cells[ci]
				c.X = x + c.W/2
				x += c.W
			}
		}
	}
}

// snappedSegment computes site-aligned cluster left edges, or ok=false
// when some cluster cannot be aligned without collision or overflow.
func snappedSegment(row *netlist.Row, s *seg) ([]float64, bool) {
	if row.SiteW <= 0 {
		return nil, false
	}
	xs := make([]float64, len(s.clusters))
	frontier := s.lx
	for k := range s.clusters {
		cl := &s.clusters[k]
		x := snap(row, cl.x)
		if x < frontier {
			x = row.Lx + math.Ceil((frontier-row.Lx-1e-9)/row.SiteW)*row.SiteW
		}
		if x+cl.w > s.hx+1e-9 {
			x = row.Lx + math.Floor((s.hx-cl.w-row.Lx+1e-9)/row.SiteW)*row.SiteW
		}
		if x < frontier-1e-9 || x+cl.w > s.hx+1e-9 {
			return nil, false
		}
		xs[k] = x
		frontier = x + cl.w
	}
	return xs, true
}

// unsnappedSegment returns the exact (legal) cluster left edges.
func unsnappedSegment(s *seg) []float64 {
	xs := make([]float64, len(s.clusters))
	frontier := s.lx
	for k := range s.clusters {
		cl := &s.clusters[k]
		x := math.Max(cl.x, frontier)
		if x+cl.w > s.hx {
			x = s.hx - cl.w
		}
		if x < frontier {
			x = frontier
		}
		xs[k] = x
		frontier = x + cl.w
	}
	return xs
}

func nearestRow(rowY []float64, y float64) int {
	i := sort.SearchFloat64s(rowY, y)
	if i == 0 {
		return 0
	}
	if i >= len(rowY) {
		return len(rowY) - 1
	}
	if y-rowY[i-1] <= rowY[i]-y {
		return i - 1
	}
	return i
}

// tetrisTrial returns the x the cell would get by greedy packing: the
// desired position pushed right of every existing cell in the segment.
func tetrisTrial(s *seg, desiredX, w float64) float64 {
	x := math.Max(desiredX, s.lx)
	// Clusters in Tetris mode are single cells appended in order; the
	// frontier is the rightmost occupied edge.
	frontier := s.lx
	for _, cl := range s.clusters {
		if cl.x+cl.w > frontier {
			frontier = cl.x + cl.w
		}
	}
	if x < frontier {
		x = frontier
	}
	if x+w > s.hx {
		x = s.hx - w
		if x < frontier {
			return math.NaN()
		}
	}
	return x
}

func tetrisCommit(s *seg, ci int, x, w float64) float64 {
	s.clusters = append(s.clusters, cluster{x: x, e: 1, q: x, w: w, cells: []int{ci}})
	return x
}

// abacusTrial simulates adding a cell (desired left edge desiredX,
// width w) to the segment and returns the final x the cell would get.
// The simulation runs the cluster recurrence backward over the real
// clusters without copying or mutating them: the would-be merged tail
// is carried in a virtual cluster whose fields follow exactly the same
// arithmetic (expression-for-expression) as abacusCommit, so trial and
// commit are bitwise-consistent.
func abacusTrial(s *seg, desiredX, w float64) float64 {
	cur := cluster{e: 1, q: desiredX, w: w}
	cur.x = clampX(cur.q/cur.e, s.lx, s.hx, cur.w)
	for k := len(s.clusters) - 1; k >= 0; k-- {
		prev := &s.clusters[k]
		if prev.x+prev.w <= cur.x+1e-12 {
			break
		}
		merged := cluster{
			q: prev.q + (cur.q - cur.e*prev.w),
			e: prev.e + cur.e,
			w: prev.w + cur.w,
		}
		merged.x = clampX(merged.q/merged.e, s.lx, s.hx, merged.w)
		cur = merged
	}
	if cur.x < s.lx-1e-9 || cur.x+cur.w > s.hx+1e-9 {
		return math.NaN()
	}
	return cur.x + cur.w - w
}

// abacusCommit adds the cell permanently (in place, no cluster-slice
// copy) and returns its final x. The caller has already validated the
// fit via abacusTrial on the identical segment state.
func abacusCommit(s *seg, ci int, desiredX, w float64) float64 {
	nc := cluster{e: 1, q: desiredX, w: w, cells: []int{ci}}
	nc.x = clampX(nc.q/nc.e, s.lx, s.hx, nc.w)
	s.clusters = append(s.clusters, nc)
	work := s.clusters
	// Collapse: merge the last cluster into its predecessor while they
	// overlap, then re-clamp.
	for len(work) >= 2 {
		last := &work[len(work)-1]
		prev := &work[len(work)-2]
		if prev.x+prev.w <= last.x+1e-12 {
			break
		}
		prev.q += last.q - last.e*prev.w
		prev.e += last.e
		prev.cells = append(prev.cells, last.cells...)
		prev.w += last.w
		prev.x = clampX(prev.q/prev.e, s.lx, s.hx, prev.w)
		work = work[:len(work)-1]
	}
	s.clusters = work
	tail := &work[len(work)-1]
	return tail.x + tail.w - w
}

func clampX(x, lx, hx, w float64) float64 {
	if x < lx {
		x = lx
	}
	if x+w > hx {
		x = hx - w
	}
	return x
}
