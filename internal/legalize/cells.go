package legalize

import (
	"fmt"
	"math"
	"sort"

	"eplace/internal/netlist"
)

// Method selects the standard-cell legalization algorithm.
type Method uint8

const (
	// Abacus places each cell by cluster dynamic programming per row,
	// minimizing displacement (the default; better quality).
	Abacus Method = iota
	// Tetris greedily packs cells left-to-right (faster, rougher).
	Tetris
)

// cluster is the Abacus cluster: a maximal run of abutting cells.
// Optimal position x = q/e; merging is associative.
type cluster struct {
	x     float64 // optimal left edge
	e     float64 // total weight
	q     float64 // sum of w_i*(x_i' - offset_i)
	w     float64 // total width
	cells []int
}

// seg is one free row interval with its placed clusters.
type seg struct {
	lx, hx   float64
	clusters []cluster
	used     float64
}

// Cells legalizes the given standard cells onto the design's rows,
// minimizing displacement from their global-placement positions.
// Returns the total and maximum displacement, or an error if capacity
// is insufficient.
func Cells(d *netlist.Design, cells []int, method Method) (total, max float64, err error) {
	if len(d.Rows) == 0 {
		return 0, 0, fmt.Errorf("legalize: design has no rows")
	}
	rawSegs := FreeSegments(d)
	rows := make([][]seg, len(d.Rows))
	for ri := range rawSegs {
		for _, s := range rawSegs[ri] {
			rows[ri] = append(rows[ri], seg{lx: s.Lx, hx: s.Hx})
		}
	}

	// Process cells in x order (Abacus) so per-row packing is coherent.
	order := append([]int(nil), cells...)
	sort.Slice(order, func(a, b int) bool {
		ca, cb := &d.Cells[order[a]], &d.Cells[order[b]]
		if ca.X != cb.X {
			return ca.X < cb.X
		}
		return order[a] < order[b]
	})

	// Row index sorted by Y for nearest-row search.
	rowY := make([]float64, len(d.Rows))
	for i, r := range d.Rows {
		rowY[i] = r.Y
	}

	for _, ci := range order {
		c := &d.Cells[ci]
		desiredX := c.X - c.W/2
		desiredY := c.Y - c.H/2
		bestCost := math.Inf(1)
		bestRow, bestSeg := -1, -1
		var bestX float64
		// Try rows outward from the nearest until the row-distance alone
		// exceeds the best cost found.
		nearest := nearestRow(rowY, desiredY)
		for radius := 0; ; radius++ {
			any := false
			for _, ri := range []int{nearest - radius, nearest + radius} {
				if ri < 0 || ri >= len(d.Rows) || (radius == 0 && ri != nearest) {
					continue
				}
				rowDist := math.Abs(d.Rows[ri].Y - desiredY)
				if rowDist >= bestCost {
					continue
				}
				any = true
				for si := range rows[ri] {
					s := &rows[ri][si]
					if s.hx-s.lx-s.used < c.W {
						continue
					}
					var x float64
					if method == Tetris {
						x = tetrisTrial(s, desiredX, c.W)
					} else {
						x = abacusTrial(s, desiredX, c.W)
					}
					if math.IsNaN(x) {
						continue
					}
					cost := math.Abs(x-desiredX) + rowDist
					if cost < bestCost {
						bestCost, bestRow, bestSeg, bestX = cost, ri, si, x
					}
				}
			}
			if !any && radius > 0 {
				break
			}
			if radius > len(d.Rows) {
				break
			}
		}
		if bestRow < 0 {
			return total, max, fmt.Errorf("legalize: no room for cell %d (%s), w=%v", ci, c.Name, c.W)
		}
		row := &d.Rows[bestRow]
		s := &rows[bestRow][bestSeg]
		var placedX float64
		if method == Tetris {
			placedX = tetrisCommit(s, ci, bestX, c.W)
		} else {
			placedX = abacusCommit(d, s, ci, desiredX, c.W)
		}
		c.X = placedX + c.W/2
		c.Y = row.Y + c.H/2
		disp := math.Abs(c.X-(desiredX+c.W/2)) + math.Abs(c.Y-(desiredY+c.H/2))
		total += disp
		if disp > max {
			max = disp
		}
		s.used += c.W
	}

	// Final per-segment fixups: snap cluster positions to sites and
	// write cells back (Abacus moves earlier cells when clusters
	// collapse). Snapping is all-or-nothing per segment: if any cluster
	// cannot be site-aligned without colliding (fractional segment
	// boundaries can force this), the whole segment keeps the exact
	// cluster positions, which are legal by construction.
	for ri := range rows {
		row := &d.Rows[ri]
		for si := range rows[ri] {
			s := &rows[ri][si]
			sort.Slice(s.clusters, func(a, b int) bool { return s.clusters[a].x < s.clusters[b].x })
			xs, ok := snappedSegment(row, s)
			if !ok {
				xs = unsnappedSegment(s)
			}
			for k := range s.clusters {
				x := xs[k]
				for _, ci := range s.clusters[k].cells {
					c := &d.Cells[ci]
					c.X = x + c.W/2
					x += c.W
				}
			}
		}
	}
	return total, max, nil
}

// snappedSegment computes site-aligned cluster left edges, or ok=false
// when some cluster cannot be aligned without collision or overflow.
func snappedSegment(row *netlist.Row, s *seg) ([]float64, bool) {
	if row.SiteW <= 0 {
		return nil, false
	}
	xs := make([]float64, len(s.clusters))
	frontier := s.lx
	for k := range s.clusters {
		cl := &s.clusters[k]
		x := snap(row, cl.x)
		if x < frontier {
			x = row.Lx + math.Ceil((frontier-row.Lx-1e-9)/row.SiteW)*row.SiteW
		}
		if x+cl.w > s.hx+1e-9 {
			x = row.Lx + math.Floor((s.hx-cl.w-row.Lx+1e-9)/row.SiteW)*row.SiteW
		}
		if x < frontier-1e-9 || x+cl.w > s.hx+1e-9 {
			return nil, false
		}
		xs[k] = x
		frontier = x + cl.w
	}
	return xs, true
}

// unsnappedSegment returns the exact (legal) cluster left edges.
func unsnappedSegment(s *seg) []float64 {
	xs := make([]float64, len(s.clusters))
	frontier := s.lx
	for k := range s.clusters {
		cl := &s.clusters[k]
		x := math.Max(cl.x, frontier)
		if x+cl.w > s.hx {
			x = s.hx - cl.w
		}
		if x < frontier {
			x = frontier
		}
		xs[k] = x
		frontier = x + cl.w
	}
	return xs
}

func nearestRow(rowY []float64, y float64) int {
	i := sort.SearchFloat64s(rowY, y)
	if i == 0 {
		return 0
	}
	if i >= len(rowY) {
		return len(rowY) - 1
	}
	if y-rowY[i-1] <= rowY[i]-y {
		return i - 1
	}
	return i
}

// tetrisTrial returns the x the cell would get by greedy packing: the
// desired position pushed right of every existing cell in the segment.
func tetrisTrial(s *seg, desiredX, w float64) float64 {
	x := math.Max(desiredX, s.lx)
	// Clusters in Tetris mode are single cells appended in order; the
	// frontier is the rightmost occupied edge.
	frontier := s.lx
	for _, cl := range s.clusters {
		if cl.x+cl.w > frontier {
			frontier = cl.x + cl.w
		}
	}
	if x < frontier {
		x = frontier
	}
	if x+w > s.hx {
		x = s.hx - w
		if x < frontier {
			return math.NaN()
		}
	}
	return x
}

func tetrisCommit(s *seg, ci int, x, w float64) float64 {
	s.clusters = append(s.clusters, cluster{x: x, e: 1, q: x, w: w, cells: []int{ci}})
	return x
}

// abacusTrial simulates adding a cell (desired left edge desiredX,
// width w) to the segment and returns the final x the cell would get.
func abacusTrial(s *seg, desiredX, w float64) float64 {
	x, _ := abacusPlace(s, -1, desiredX, w, false)
	return x
}

// abacusCommit adds the cell permanently and returns its final x.
func abacusCommit(d *netlist.Design, s *seg, ci int, desiredX, w float64) float64 {
	x, _ := abacusPlace(s, ci, desiredX, w, true)
	return x
}

// abacusPlace implements the Abacus cluster recurrence on one segment.
// When commit is false the segment state is restored afterwards.
func abacusPlace(s *seg, ci int, desiredX, w float64, commit bool) (float64, bool) {
	// Candidate cluster for the new cell.
	nc := cluster{e: 1, q: desiredX, w: w}
	if commit {
		nc.cells = []int{ci}
	}
	nc.x = clampX(nc.q/nc.e, s.lx, s.hx, nc.w)

	saved := s.clusters
	work := append([]cluster(nil), s.clusters...)
	work = append(work, nc)
	// Collapse: merge the last cluster into its predecessor while they
	// overlap, then re-clamp.
	for len(work) >= 2 {
		last := &work[len(work)-1]
		prev := &work[len(work)-2]
		if prev.x+prev.w <= last.x+1e-12 {
			break
		}
		// Merge last into prev.
		prev.q += last.q - last.e*prev.w
		prev.e += last.e
		if commit {
			prev.cells = append(prev.cells, last.cells...)
		}
		prev.w += last.w
		prev.x = clampX(prev.q/prev.e, s.lx, s.hx, prev.w)
		work = work[:len(work)-1]
	}
	// Fit check.
	tail := work[len(work)-1]
	if tail.x < s.lx-1e-9 || tail.x+tail.w > s.hx+1e-9 {
		if !commit {
			s.clusters = saved
		}
		return math.NaN(), false
	}
	// Locate the new cell's x: it is the last cell of the tail cluster.
	x := tail.x + tail.w - w
	if commit {
		s.clusters = work
	} else {
		s.clusters = saved
	}
	return x, true
}

func clampX(x, lx, hx, w float64) float64 {
	if x < lx {
		x = lx
	}
	if x+w > hx {
		x = hx - w
	}
	return x
}
