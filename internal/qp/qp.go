// Package qp implements the quadratic mixed-size initial placement
// (mIP): total wirelength is quadratically minimized with the
// bound-to-bound (B2B) net model, solved per axis by preconditioned
// conjugate gradient, with the model rebuilt from the new positions for
// a few rounds. The result has low wirelength and high overlap, the
// intended starting point v_mIP for mGP (Sec. III).
package qp

import (
	"math"

	"eplace/internal/geom"
	"eplace/internal/netlist"
	"eplace/internal/sparse"
)

// Options tunes the initial placement.
type Options struct {
	// Rounds is how many times the B2B model is rebuilt (default 6).
	Rounds int
	// CGTol is the conjugate-gradient relative tolerance (default 1e-6).
	CGTol float64
	// CGMaxIter bounds each CG solve (default 300).
	CGMaxIter int
	// AnchorWeight is a tiny pull toward the region center applied to
	// every movable cell so the system is positive definite even for
	// cells with no fixed connectivity (default 1e-6, relative to the
	// average net weight).
	AnchorWeight float64
}

func (o *Options) defaults() {
	if o.Rounds <= 0 {
		o.Rounds = 6
	}
	if o.CGTol <= 0 {
		o.CGTol = 1e-6
	}
	if o.CGMaxIter <= 0 {
		o.CGMaxIter = 300
	}
	if o.AnchorWeight <= 0 {
		o.AnchorWeight = 1e-6
	}
}

// Place quadratically minimizes wirelength over the cells in idx,
// writing positions back to the design (clamped inside the region).
// Cells not in idx are fixed terminals.
func Place(d *netlist.Design, idx []int, opt Options) {
	opt.defaults()
	n := len(idx)
	if n == 0 {
		return
	}
	slot := make([]int, len(d.Cells))
	for i := range slot {
		slot[i] = -1
	}
	for k, ci := range idx {
		slot[ci] = k
	}
	center := d.Region.Center()
	// Start every movable cell at the region center with a deterministic
	// microscopic spread so the B2B boundary pins are well defined.
	for k, ci := range idx {
		c := &d.Cells[ci]
		frac := float64(k) / float64(n)
		c.X = center.X + (frac-0.5)*1e-3*d.Region.W()
		c.Y = center.Y + (math.Mod(frac*617.0, 1.0)-0.5)*1e-3*d.Region.H()
	}
	for round := 0; round < opt.Rounds; round++ {
		solveAxis(d, idx, slot, opt, true)
		solveAxis(d, idx, slot, opt, false)
	}
	for _, ci := range idx {
		c := &d.Cells[ci]
		p := geom.ClampPoint(geom.Point{X: c.X, Y: c.Y}, c.W, c.H, d.Region)
		c.X, c.Y = p.X, p.Y
	}
}

// solveAxis builds and solves the B2B system along one axis.
func solveAxis(d *netlist.Design, idx []int, slot []int, opt Options, xAxis bool) {
	n := len(idx)
	b := sparse.NewBuilder(n)
	rhs := make([]float64, n)
	minDist := 1e-4 * math.Max(d.Region.W(), d.Region.H())

	for ni := range d.Nets {
		net := &d.Nets[ni]
		deg := len(net.Pins)
		if deg < 2 {
			continue
		}
		w := net.EffWeight()
		// Locate boundary pins along this axis.
		loPin, hiPin := -1, -1
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, pi := range net.Pins {
			v := pinCoord(d, pi, xAxis)
			if v < lo {
				lo, loPin = v, pi
			}
			if v > hi {
				hi, hiPin = v, pi
			}
		}
		if loPin == hiPin {
			hiPin = net.Pins[0]
			if hiPin == loPin {
				hiPin = net.Pins[1]
			}
		}
		// B2B: every pin connects to both boundary pins; boundary pins
		// connect to each other once. Weight w_e * 2 / ((deg-1) * dist).
		base := 2 * w / float64(deg-1)
		for _, pi := range net.Pins {
			for _, bp := range [2]int{loPin, hiPin} {
				if pi == bp {
					continue
				}
				// Skip the duplicate (lo,hi) stamp: only stamp hi->lo once.
				if pi == loPin && bp == hiPin {
					continue
				}
				dist := math.Abs(pinCoord(d, pi, xAxis) - pinCoord(d, bp, xAxis))
				if dist < minDist {
					dist = minDist
				}
				stamp(d, b, rhs, slot, pi, bp, base/dist, xAxis)
			}
		}
		// Boundary-to-boundary edge.
		dist := hi - lo
		if dist < minDist {
			dist = minDist
		}
		stamp(d, b, rhs, slot, loPin, hiPin, base/dist, xAxis)
	}

	// Tiny center anchors keep the system nonsingular.
	center := d.Region.Center()
	cv := center.Y
	if xAxis {
		cv = center.X
	}
	for k := 0; k < n; k++ {
		b.AddDiag(k, opt.AnchorWeight)
		rhs[k] += opt.AnchorWeight * cv
	}

	a := b.Build()
	x := make([]float64, n)
	for k, ci := range idx {
		if xAxis {
			x[k] = d.Cells[ci].X
		} else {
			x[k] = d.Cells[ci].Y
		}
	}
	sparse.CG(a, rhs, x, opt.CGTol, opt.CGMaxIter)
	for k, ci := range idx {
		if xAxis {
			d.Cells[ci].X = x[k]
		} else {
			d.Cells[ci].Y = x[k]
		}
	}
}

// stamp adds the spring between pins p and q with weight w to the
// system, folding fixed endpoints and pin offsets into the RHS.
func stamp(d *netlist.Design, b *sparse.Builder, rhs []float64, slot []int, p, q int, w float64, xAxis bool) {
	pc, qc := d.Pins[p].Cell, d.Pins[q].Cell
	ps, qs := -1, -1
	if pc >= 0 {
		ps = slot[pc]
	}
	if qc >= 0 {
		qs = slot[qc]
	}
	po, qo := pinOffset(d, p, xAxis), pinOffset(d, q, xAxis)
	switch {
	case ps >= 0 && qs >= 0:
		b.AddSym(ps, qs, w)
		// Offsets: spring on (x_p + po) - (x_q + qo).
		rhs[ps] += w * (qo - po)
		rhs[qs] += w * (po - qo)
	case ps >= 0:
		b.AddDiag(ps, w)
		rhs[ps] += w * (pinCoord(d, q, xAxis) - po)
	case qs >= 0:
		b.AddDiag(qs, w)
		rhs[qs] += w * (pinCoord(d, p, xAxis) - qo)
	}
}

func pinCoord(d *netlist.Design, pi int, xAxis bool) float64 {
	p := d.PinPos(pi)
	if xAxis {
		return p.X
	}
	return p.Y
}

func pinOffset(d *netlist.Design, pi int, xAxis bool) float64 {
	if xAxis {
		return d.Pins[pi].Ox
	}
	return d.Pins[pi].Oy
}
