package qp

import (
	"math"
	"math/rand"
	"testing"

	"eplace/internal/geom"
	"eplace/internal/netlist"
)

func TestChainBetweenPads(t *testing.T) {
	// pad0(0) - c0 - c1 - c2 - pad1(40): cells end ordered inside [0, 40].
	d := netlist.New("chain", geom.Rect{Hx: 40, Hy: 10})
	pad0 := d.AddCell(netlist.Cell{W: 1, H: 1, X: 0, Y: 5, Fixed: true, Kind: netlist.Pad})
	pad1 := d.AddCell(netlist.Cell{W: 1, H: 1, X: 40, Y: 5, Fixed: true, Kind: netlist.Pad})
	var cells []int
	for i := 0; i < 3; i++ {
		cells = append(cells, d.AddCell(netlist.Cell{W: 1, H: 1, Y: 5}))
	}
	link := func(a, b int) {
		ni := d.AddNet("", 1)
		d.Connect(a, ni, 0, 0)
		d.Connect(b, ni, 0, 0)
	}
	link(pad0, cells[0])
	link(cells[0], cells[1])
	link(cells[1], cells[2])
	link(cells[2], pad1)
	Place(d, cells, Options{})
	xs := []float64{d.Cells[cells[0]].X, d.Cells[cells[1]].X, d.Cells[cells[2]].X}
	if !(xs[0] < xs[1] && xs[1] < xs[2]) {
		t.Errorf("chain not ordered: %v", xs)
	}
	if xs[0] < 0.5 || xs[2] > 39.5 {
		t.Errorf("chain endpoints out of span: %v", xs)
	}
	// Middle cell near the center.
	if math.Abs(xs[1]-20) > 6 {
		t.Errorf("middle cell at %v, want near 20", xs[1])
	}
}

func TestStarPullsToCenterOfPads(t *testing.T) {
	d := netlist.New("star", geom.Rect{Hx: 100, Hy: 100})
	c := d.AddCell(netlist.Cell{W: 2, H: 2})
	pads := [][2]float64{{10, 10}, {90, 10}, {10, 90}, {90, 90}}
	for _, p := range pads {
		pi := d.AddCell(netlist.Cell{W: 1, H: 1, X: p[0], Y: p[1], Fixed: true, Kind: netlist.Pad})
		ni := d.AddNet("", 1)
		d.Connect(c, ni, 0, 0)
		d.Connect(pi, ni, 0, 0)
	}
	Place(d, []int{c}, Options{})
	if math.Abs(d.Cells[c].X-50) > 2 || math.Abs(d.Cells[c].Y-50) > 2 {
		t.Errorf("star center at (%v, %v), want near (50, 50)", d.Cells[c].X, d.Cells[c].Y)
	}
}

func TestPlaceReducesHPWLFromRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := netlist.New("r", geom.Rect{Hx: 200, Hy: 200})
	var idx []int
	for i := 0; i < 100; i++ {
		idx = append(idx, d.AddCell(netlist.Cell{
			W: 2, H: 2, X: rng.Float64() * 200, Y: rng.Float64() * 200,
		}))
	}
	// A ring of fixed pads.
	var pads []int
	for i := 0; i < 12; i++ {
		ang := 2 * math.Pi * float64(i) / 12
		pads = append(pads, d.AddCell(netlist.Cell{
			W: 1, H: 1, X: 100 + 99*math.Cos(ang), Y: 100 + 99*math.Sin(ang),
			Fixed: true, Kind: netlist.Pad,
		}))
	}
	for k := 0; k < 150; k++ {
		ni := d.AddNet("", 1)
		deg := 2 + rng.Intn(3)
		for p := 0; p < deg; p++ {
			d.Connect(idx[rng.Intn(len(idx))], ni, 0, 0)
		}
		if rng.Intn(4) == 0 {
			d.Connect(pads[rng.Intn(len(pads))], ni, 0, 0)
		}
	}
	before := d.HPWL()
	Place(d, idx, Options{})
	after := d.HPWL()
	if after >= 0.5*before {
		t.Errorf("quadratic placement HPWL %v not well below random %v", after, before)
	}
	// All cells inside the region.
	for _, ci := range idx {
		r := d.Cells[ci].Rect()
		if !d.Region.ContainsRect(r) {
			t.Errorf("cell %d at %v escapes region", ci, r)
		}
	}
}

func TestPinOffsetsRespected(t *testing.T) {
	// Two cells joined by pins with opposite offsets: quadratic optimum
	// aligns the pins, so centers differ by the offset difference.
	d := netlist.New("off", geom.Rect{Hx: 100, Hy: 100})
	a := d.AddCell(netlist.Cell{W: 4, H: 2})
	pad := d.AddCell(netlist.Cell{W: 1, H: 1, X: 50, Y: 50, Fixed: true, Kind: netlist.Pad})
	ni := d.AddNet("", 1)
	d.Connect(a, ni, 2, 0) // pin on the right edge of a
	d.Connect(pad, ni, 0, 0)
	Place(d, []int{a}, Options{})
	// Pin (a.X + 2) should coincide with pad at 50 => a.X ~ 48.
	if math.Abs(d.Cells[a].X-48) > 0.5 {
		t.Errorf("a.X = %v, want ~48", d.Cells[a].X)
	}
}

func TestNoFixedConnectivityStaysInRegion(t *testing.T) {
	// A floating clique with no pads must not blow up (anchors keep the
	// system nonsingular) and must stay inside the region.
	d := netlist.New("float", geom.Rect{Hx: 50, Hy: 50})
	var idx []int
	for i := 0; i < 5; i++ {
		idx = append(idx, d.AddCell(netlist.Cell{W: 2, H: 2}))
	}
	ni := d.AddNet("clique", 1)
	for _, ci := range idx {
		d.Connect(ci, ni, 0, 0)
	}
	Place(d, idx, Options{})
	for _, ci := range idx {
		c := &d.Cells[ci]
		if math.IsNaN(c.X) || math.IsNaN(c.Y) {
			t.Fatalf("cell %d at NaN", ci)
		}
		if !d.Region.ContainsRect(c.Rect()) {
			t.Errorf("cell %d escapes region: %v", ci, c.Rect())
		}
	}
}

func TestEmptyMovableIsNoop(t *testing.T) {
	d := netlist.New("e", geom.Rect{Hx: 10, Hy: 10})
	d.AddCell(netlist.Cell{W: 1, H: 1, X: 5, Y: 5, Fixed: true})
	Place(d, nil, Options{}) // must not panic
}

func TestMixedSizeMacroAndCells(t *testing.T) {
	// A macro and std cells sharing nets: everything participates in
	// exactly the same way (the ePlace equalization property).
	d := netlist.New("mix", geom.Rect{Hx: 100, Hy: 100})
	mac := d.AddCell(netlist.Cell{W: 30, H: 30, Kind: netlist.Macro})
	var cells []int
	for i := 0; i < 10; i++ {
		cells = append(cells, d.AddCell(netlist.Cell{W: 2, H: 2}))
	}
	pad := d.AddCell(netlist.Cell{W: 1, H: 1, X: 95, Y: 50, Fixed: true, Kind: netlist.Pad})
	for _, ci := range cells {
		ni := d.AddNet("", 1)
		d.Connect(mac, ni, 0, 0)
		d.Connect(ci, ni, 0, 0)
	}
	ni := d.AddNet("", 1)
	d.Connect(mac, ni, 0, 0)
	d.Connect(pad, ni, 0, 0)
	idx := append([]int{mac}, cells...)
	Place(d, idx, Options{})
	if !d.Region.ContainsRect(d.Cells[mac].Rect()) {
		t.Errorf("macro escapes region: %v", d.Cells[mac].Rect())
	}
	// Macro pulled toward the pad side.
	if d.Cells[mac].X < 50 {
		t.Errorf("macro at x=%v, want pulled toward pad at 95", d.Cells[mac].X)
	}
}

func BenchmarkPlace2000(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	d := netlist.New("bench", geom.Rect{Hx: 500, Hy: 500})
	var idx []int
	for i := 0; i < 2000; i++ {
		idx = append(idx, d.AddCell(netlist.Cell{W: 2, H: 2}))
	}
	for i := 0; i < 16; i++ {
		p := d.AddCell(netlist.Cell{W: 1, H: 1, X: float64(i) * 30, Y: 0, Fixed: true, Kind: netlist.Pad})
		ni := d.AddNet("", 1)
		d.Connect(p, ni, 0, 0)
		d.Connect(idx[rng.Intn(len(idx))], ni, 0, 0)
	}
	for k := 0; k < 3000; k++ {
		ni := d.AddNet("", 1)
		deg := 2 + rng.Intn(3)
		for p := 0; p < deg; p++ {
			d.Connect(idx[rng.Intn(len(idx))], ni, 0, 0)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Place(d, idx, Options{})
	}
}
